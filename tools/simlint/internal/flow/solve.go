package flow

import "go/ast"

// Ops defines a forward dataflow problem over an analyzer-owned state type.
// Join must be a monotone merge for the solver to terminate; Transfer may
// mutate and return its argument (Solve clones before every block visit).
type Ops[S any] struct {
	Clone    func(S) S
	Join     func(dst S, src S) (S, bool) // merge src into dst; report change
	Transfer func(S, ast.Node) S
}

// Solve runs a forward worklist iteration to fixpoint and returns the state
// at entry of every block. The entry block starts from init; everything
// else starts from the zero state and accumulates through Join.
func Solve[S any](g *Graph, init S, ops Ops[S]) map[*Block]S {
	in := map[*Block]S{g.Entry: init}
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false

		out := ops.Clone(in[blk])
		for _, n := range blk.Nodes {
			out = ops.Transfer(out, n)
		}
		for _, succ := range blk.Succs {
			cur, ok := in[succ]
			if !ok {
				in[succ] = ops.Clone(out)
			} else {
				merged, changed := ops.Join(cur, out)
				in[succ] = merged
				if !changed {
					continue
				}
			}
			if !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return in
}

// Replay re-walks every reachable block from its solved entry state,
// applying visit to each node with the state holding *before* the node
// executes, then advancing the state with the same transfer. Analyzers emit
// findings from visit; running it once after Solve keeps reports out of the
// fixpoint iteration.
func Replay[S any](g *Graph, in map[*Block]S, ops Ops[S], visit func(S, ast.Node)) {
	for _, blk := range g.Blocks {
		state, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		state = ops.Clone(state)
		for _, n := range blk.Nodes {
			visit(state, n)
			state = ops.Transfer(state, n)
		}
	}
}

// ExitStates returns, for every edge into the exit block, the state after
// the predecessor's last node together with that node (nil when the block
// is empty). Rules that must check the fall-off-the-end path (a lock still
// held when the function ends without a return) use this.
func ExitStates[S any](g *Graph, in map[*Block]S, ops Ops[S]) []ExitState[S] {
	var out []ExitState[S]
	for _, blk := range g.Blocks {
		if _, ok := in[blk]; !ok {
			continue
		}
		intoExit := false
		for _, s := range blk.Succs {
			if s == g.Exit {
				intoExit = true
			}
		}
		if !intoExit {
			continue
		}
		state := ops.Clone(in[blk])
		var last ast.Node
		for _, n := range blk.Nodes {
			state = ops.Transfer(state, n)
			last = n
		}
		out = append(out, ExitState[S]{State: state, Last: last})
	}
	return out
}

// ExitState is one predecessor-of-exit snapshot from ExitStates.
type ExitState[S any] struct {
	State S
	Last  ast.Node
}
