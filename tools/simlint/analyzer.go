// Analyzer plumbing: findings, suppression comments, and the lint pipeline.
package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic. Findings render as "file:line: [rule] msg"
// with the file path relative to the module root, and are always emitted in
// (file, line, rule, message) order so simlint's own output is
// deterministic and golden-testable.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// Analyzer is one repo-specific rule.
type Analyzer interface {
	Name() string
	Run(m *Module) []Finding
}

// ignorePrefix introduces a suppression comment:
//
//	//simlint:ignore <rule> <justification>
//
// placed either at the end of the offending line or on its own line
// directly above it. The justification is mandatory: a suppression without
// one does not suppress and is itself reported (rule "ignore").
const ignorePrefix = "simlint:ignore"

// suppression is one parsed //simlint:ignore comment.
type suppression struct {
	rule   string
	reason string
}

// suppressionIndex maps file -> line -> suppressions declared on that line.
type suppressionIndex map[string]map[int][]suppression

// collectSuppressions parses every //simlint:ignore comment in the module.
// Malformed suppressions (no rule, or no justification) are returned as
// findings under the "ignore" rule.
func collectSuppressions(m *Module) (suppressionIndex, []Finding) {
	idx := suppressionIndex{}
	var bad []Finding
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, ignorePrefix) {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
					if len(fields) == 0 {
						bad = append(bad, Finding{Pos: pos, Rule: "ignore",
							Msg: "suppression names no rule; use //simlint:ignore <rule> <justification>"})
						continue
					}
					if len(fields) == 1 {
						bad = append(bad, Finding{Pos: pos, Rule: "ignore",
							Msg: fmt.Sprintf("suppression of %q has no justification and is ignored; state why the rule does not apply", fields[0])})
						continue
					}
					lines := idx[pos.Filename]
					if lines == nil {
						lines = map[int][]suppression{}
						idx[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line],
						suppression{rule: fields[0], reason: strings.Join(fields[1:], " ")})
				}
			}
		}
	}
	return idx, bad
}

// suppressed reports whether a finding is covered by a suppression on its
// own line or the line directly above.
func (idx suppressionIndex) suppressed(f Finding) bool {
	lines := idx[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, s := range lines[line] {
			if s.rule == f.Rule {
				return true
			}
		}
	}
	return false
}

// Config selects what the pipeline checks. The zero value is not usable;
// see defaultConfig for the repository's own settings.
type Config struct {
	// Root is the module root directory.
	Root string
	// Deterministic lists module-relative package directories whose code
	// must be reproducible: maporder and wallclock apply only there.
	Deterministic []string
	// KeyFile is the module-relative path of the canonical cache-key
	// encoder cross-checked by keydrift.
	KeyFile string
	// KeyRoots name the struct types whose field sets the key encoder must
	// cover, as "<module-relative package dir>.<TypeName>". Struct-typed
	// fields of a root (transitively, through pointers, slices and arrays)
	// are checked too.
	KeyRoots []string
}

// runLint loads the module and runs every analyzer, returning the surviving
// findings in deterministic order.
func runLint(cfg Config) ([]Finding, error) {
	m, err := loadModule(cfg.Root)
	if err != nil {
		return nil, err
	}
	det := map[string]bool{}
	for _, d := range cfg.Deterministic {
		det[d] = true
	}
	analyzers := []Analyzer{
		maporder{det: det},
		wallclock{det: det},
		reflectfmt{},
		keydrift{keyFile: cfg.KeyFile, roots: cfg.KeyRoots},
	}
	idx, findings := collectSuppressions(m)
	for _, a := range analyzers {
		for _, f := range a.Run(m) {
			if !idx.suppressed(f) {
				findings = append(findings, f)
			}
		}
	}
	for i := range findings {
		findings[i].Pos.Filename = m.RelFile(findings[i].Pos.Filename)
	}
	sortFindings(findings)
	return findings, nil
}

// sortFindings orders findings by (file, line, column, rule, message) so
// output never depends on analyzer or map iteration order.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

// render formats findings one per line as "file:line: [rule] message".
func render(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "%s:%d: [%s] %s\n", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
	}
	return b.String()
}

// enclosingFuncs applies fn to every function declaration in the file,
// giving analyzers a named context for their walks.
func enclosingFuncs(f *ast.File, fn func(decl *ast.FuncDecl)) {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			fn(fd)
		}
	}
}
