package main

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// fixtureConfig lints the self-contained module under testdata/fixture,
// with its own deterministic set and key encoder.
func fixtureConfig() Config {
	return Config{
		Root:          filepath.Join("testdata", "fixture"),
		Deterministic: []string{"det"},
		KeyFile:       "enc/key.go",
		KeyRoots:      []string{"keys.Options"},
	}
}

var (
	fixtureOnce     sync.Once
	fixtureFindings []Finding
	fixtureErr      error
)

func fixtureLint(t *testing.T) []Finding {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureFindings, fixtureErr = runLint(fixtureConfig())
	})
	if fixtureErr != nil {
		t.Fatalf("runLint: %v", fixtureErr)
	}
	return fixtureFindings
}

// TestAnalyzerFindings pins, per rule, exactly which fixture sites are
// flagged — and, by omission, that the justified suppressions and the
// non-deterministic package stay silent.
func TestAnalyzerFindings(t *testing.T) {
	findings := fixtureLint(t)
	got := map[string][]string{}
	for _, f := range findings {
		got[f.Rule] = append(got[f.Rule], fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line))
	}
	want := map[string][]string{
		"maporder": {
			"det/det.go:13", // Sum: unsuppressed range over map
			"det/det.go:34", // SumBadSuppress: justification-less suppression does not suppress
		},
		"wallclock": {
			"det/det.go:42", // Stamp: time.Now
			"det/det.go:43", // Stamp: time.Since
			"det/det.go:59", // Draw: global math/rand
		},
		"reflectfmt": {
			"hashctx/hashctx.go:18", // Key: %+v of pointer-carrying struct
			"hashctx/hashctx.go:41", // mix: %v into a hash.Hash writer
		},
		"keydrift": {
			"keys/keys.go:16", // Region.Skew never encoded
			"keys/keys.go:23", // Options.Drift never encoded
		},
		"ignore": {
			"det/det.go:33", // suppression without a justification
		},
	}
	for rule, sites := range want {
		if !reflect.DeepEqual(got[rule], sites) {
			t.Errorf("rule %s: got %v, want %v", rule, got[rule], sites)
		}
	}
	for rule := range got {
		if _, ok := want[rule]; !ok {
			t.Errorf("unexpected findings for rule %s: %v", rule, got[rule])
		}
	}
}

// TestGoldenOutput pins the full rendered report. This is simlint's own
// determinism regression test: the golden can only stay stable if findings
// are emitted in sorted (file, line, rule, message) order.
func TestGoldenOutput(t *testing.T) {
	goldenPath := filepath.Join("testdata", "fixture.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	got := render(fixtureLint(t))
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// TestOutputDeterministic lints the fixture twice from scratch and
// requires byte-identical reports.
func TestOutputDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("second full load is slow")
	}
	again, err := runLint(fixtureConfig())
	if err != nil {
		t.Fatalf("runLint: %v", err)
	}
	if a, b := render(fixtureLint(t)), render(again); a != b {
		t.Errorf("two runs rendered differently:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}

// TestRepoClean lints the repository itself: HEAD must report zero
// unsuppressed findings, which is what wires the rule set into make check.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	findings, err := runLint(defaultConfig(filepath.Join("..", "..")))
	if err != nil {
		t.Fatalf("runLint: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("repository is not lint-clean:\n%s", render(findings))
	}
}

func TestVerbRefs(t *testing.T) {
	cases := []struct {
		format string
		want   []verbRef
	}{
		{"plain", nil},
		{"%d", []verbRef{{'d', "", 0}}},
		{"a=%v b=%+v", []verbRef{{'v', "", 0}, {'v', "+", 1}}},
		{"%#v", []verbRef{{'v', "#", 0}}},
		{"%% %v", []verbRef{{'v', "", 0}}},
		{"%*d %v", []verbRef{{'d', "", 1}, {'v', "", 2}}},
		{"%.3f %v", []verbRef{{'f', "", 0}, {'v', "", 1}}},
		{"%[2]v %v", []verbRef{{'v', "", 1}, {'v', "", 2}}},
	}
	for _, c := range cases {
		if got := verbRefs(c.format); !reflect.DeepEqual(got, c.want) {
			t.Errorf("verbRefs(%q) = %v, want %v", c.format, got, c.want)
		}
	}
}
