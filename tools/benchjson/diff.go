package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// diffReports compares two benchmark reports and renders a per-benchmark
// ns/op table to w. It returns the benchmarks that regressed past
// thresholdPct — considering only "short" benchmarks, those whose baseline
// ns/op is at most shortNs: long figure-scale runs execute once
// (-benchtime=1x) and their single sample is too noisy to gate on, while
// the short ones are exactly the hot-path microbenchmarks a performance
// regression shows up in first.
//
// Benchmarks are matched by package plus name with the -<GOMAXPROCS>
// suffix stripped, so a baseline recorded on a different host still
// compares. Benchmarks present on only one side are reported but never
// fail the diff.
func diffReports(w *os.File, old, new Report, thresholdPct, shortNs float64) []string {
	type row struct {
		key      string
		oldNs    float64
		newNs    float64
		deltaPct float64
		short    bool
	}
	index := func(r Report) map[string]float64 {
		m := make(map[string]float64, len(r.Benchmarks))
		for _, b := range r.Benchmarks {
			if ns, ok := b.Metrics["ns/op"]; ok {
				m[benchKey(b)] = ns
			}
		}
		return m
	}
	oldNs, newNs := index(old), index(new)

	var rows []row
	var onlyOld, onlyNew []string
	for k, o := range oldNs {
		n, ok := newNs[k]
		if !ok {
			onlyOld = append(onlyOld, k)
			continue
		}
		rows = append(rows, row{key: k, oldNs: o, newNs: n, deltaPct: 100 * (n - o) / o, short: o <= shortNs})
	}
	for k := range newNs {
		if _, ok := oldNs[k]; !ok {
			onlyNew = append(onlyNew, k)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)

	var failed []string
	fmt.Fprintf(w, "%-60s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, r := range rows {
		marker := ""
		if r.short && r.deltaPct > thresholdPct {
			marker = "  REGRESSION"
			failed = append(failed, r.key)
		}
		if !r.short {
			marker = "  (long, informational)"
		}
		fmt.Fprintf(w, "%-60s %14.0f %14.0f %+7.1f%%%s\n", r.key, r.oldNs, r.newNs, r.deltaPct, marker)
	}
	for _, k := range onlyOld {
		fmt.Fprintf(w, "%-60s only in baseline\n", k)
	}
	for _, k := range onlyNew {
		fmt.Fprintf(w, "%-60s only in new report\n", k)
	}
	return failed
}

// benchKey identifies a benchmark across reports: package plus name with
// the trailing -<GOMAXPROCS> suffix dropped, so runs from hosts with
// different core counts still line up.
func benchKey(b Result) string {
	name := b.Name
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if digitsOnly(name[i+1:]) {
			name = name[:i]
		}
	}
	if b.Package == "" {
		return name
	}
	return b.Package + "." + name
}

func digitsOnly(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// readReport loads one JSON report written by benchjson -out.
func readReport(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %v", path, err)
	}
	return r, nil
}
