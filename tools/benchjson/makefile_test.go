package main

import (
	"os/exec"
	"strings"
	"testing"
)

// TestBenchDiffSkipsWithoutBaseline guards the Makefile's bench-diff
// degradation path: with no committed BENCH_*.json baseline (a fresh or
// shallow clone), the target must print a clear skip message and exit 0
// instead of failing. The glob is overridden to a pattern that matches
// nothing, so the test passes regardless of what baselines the tree
// actually carries.
func TestBenchDiffSkipsWithoutBaseline(t *testing.T) {
	makeBin, err := exec.LookPath("make")
	if err != nil {
		t.Skip("make not installed")
	}
	cmd := exec.Command(makeBin, "-C", "../..", "bench-diff", "BENCH_BASELINE_GLOB=.no-such-baseline-*.json")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("bench-diff without a baseline must exit 0, got %v:\n%s", err, out)
	}
	if !strings.Contains(string(out), "bench-diff: skip: no") {
		t.Errorf("bench-diff without a baseline must explain the skip, got:\n%s", out)
	}
}
