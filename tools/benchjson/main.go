// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark report. The textual output passes through to stdout unchanged, so
// it slots into a pipe:
//
//	go test -bench=. -benchtime=1x ./... | go run ./tools/benchjson -out BENCH.json
//
// Each "Benchmark*" result line becomes one record with its iteration count
// and every value/unit measurement pair (ns/op, B/op, allocs/op, and any
// custom ReportMetric units). The report is written with sorted keys and a
// stable record order (input order), so identical bench runs produce
// identical files.
//
// Diff mode compares two reports and gates on regressions:
//
//	go run ./tools/benchjson -diff BENCH_old.json BENCH_new.json
//
// It prints a per-benchmark ns/op table and exits non-zero when any short
// benchmark (baseline ns/op at most -short-ns, default 1s) regressed by
// more than -threshold percent (default 15). Long benchmarks are reported
// for information only: they run once under -benchtime=1x, and a single
// sample is too noisy to gate on.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line's parsed form.
type Result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the file benchjson writes.
type Report struct {
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "", "write the JSON report to this file (required unless -diff)")
	diff := flag.Bool("diff", false, "compare two reports: benchjson -diff old.json new.json")
	threshold := flag.Float64("threshold", 15, "ns/op regression percentage that fails the diff")
	shortNs := flag.Float64("short-ns", 1e9, "baseline ns/op bound below which a benchmark counts as short (gated)")
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			log.Fatal("-diff takes exactly two report files: benchjson -diff old.json new.json")
		}
		oldRep, err := readReport(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		newRep, err := readReport(flag.Arg(1))
		if err != nil {
			log.Fatal(err)
		}
		failed := diffReports(os.Stdout, oldRep, newRep, *threshold, *shortNs)
		if len(failed) > 0 {
			log.Fatalf("%d short benchmark(s) regressed more than %.0f%%: %s",
				len(failed), *threshold, strings.Join(failed, ", "))
		}
		return
	}
	if *out == "" {
		log.Fatal("-out is required")
	}

	var report Report
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		// `go test` prints "pkg: <import path>" before each package's
		// benchmarks; remember it to qualify the records.
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if r, ok := parseBenchLine(line); ok {
			r.Package = pkg
			report.Benchmarks = append(report.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&report); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark results to %s\n", len(report.Benchmarks), *out)
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8   	     100	  11358 ns/op	  4.5 MB/s	 120 B/op
//
// reporting ok=false for any other line.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return Result{}, false
	}
	return r, true
}
