package main

import (
	"os"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkRun-8   \t     100\t  11358 ns/op\t 120 B/op")
	if !ok {
		t.Fatal("valid bench line rejected")
	}
	if r.Name != "BenchmarkRun-8" || r.Iterations != 100 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Metrics["ns/op"] != 11358 || r.Metrics["B/op"] != 120 {
		t.Fatalf("metrics %v", r.Metrics)
	}
	for _, line := range []string{
		"PASS",
		"ok  \tscalesim\t0.5s",
		"pkg: scalesim",
		"BenchmarkBroken notanumber ns/op",
		"BenchmarkNoMetrics-8 100",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Fatalf("non-result line parsed: %q", line)
		}
	}
}

func TestBenchKeyStripsGOMAXPROCS(t *testing.T) {
	cases := []struct {
		in   Result
		want string
	}{
		{Result{Name: "BenchmarkRun-8", Package: "scalesim"}, "scalesim.BenchmarkRun"},
		{Result{Name: "BenchmarkRun-128", Package: "scalesim"}, "scalesim.BenchmarkRun"},
		{Result{Name: "BenchmarkRun", Package: "scalesim"}, "scalesim.BenchmarkRun"},
		// A subbenchmark suffix that is not a core count stays.
		{Result{Name: "BenchmarkRun/size-big", Package: ""}, "BenchmarkRun/size-big"},
	}
	for _, c := range cases {
		if got := benchKey(c.in); got != c.want {
			t.Errorf("benchKey(%q,%q) = %q, want %q", c.in.Package, c.in.Name, got, c.want)
		}
	}
}

// TestDiffReports pins the gating contract: short benchmarks past the
// threshold fail, long benchmarks and one-sided benchmarks never do.
func TestDiffReports(t *testing.T) {
	old := Report{Benchmarks: []Result{
		{Name: "BenchmarkFast-8", Package: "p", Metrics: map[string]float64{"ns/op": 1000}},
		{Name: "BenchmarkSlow-8", Package: "p", Metrics: map[string]float64{"ns/op": 5e9}},
		{Name: "BenchmarkGone-8", Package: "p", Metrics: map[string]float64{"ns/op": 10}},
		{Name: "BenchmarkOK-8", Package: "p", Metrics: map[string]float64{"ns/op": 2000}},
	}}
	new := Report{Benchmarks: []Result{
		// 30% regression on a short benchmark: fails.
		{Name: "BenchmarkFast-4", Package: "p", Metrics: map[string]float64{"ns/op": 1300}},
		// 100% regression on a long benchmark: informational only.
		{Name: "BenchmarkSlow-4", Package: "p", Metrics: map[string]float64{"ns/op": 1e10}},
		// Within threshold.
		{Name: "BenchmarkOK-4", Package: "p", Metrics: map[string]float64{"ns/op": 2100}},
		// New benchmark: reported, never gated.
		{Name: "BenchmarkNew-4", Package: "p", Metrics: map[string]float64{"ns/op": 1}},
	}}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	failed := diffReports(devnull, old, new, 15, 1e9)
	if len(failed) != 1 || failed[0] != "p.BenchmarkFast" {
		t.Fatalf("failed = %v, want [p.BenchmarkFast]", failed)
	}
	// A looser threshold passes everything.
	if failed := diffReports(devnull, old, new, 50, 1e9); len(failed) != 0 {
		t.Fatalf("failed = %v, want none at 50%%", failed)
	}
}
