package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkRun-8   \t     100\t  11358 ns/op\t 120 B/op")
	if !ok {
		t.Fatal("valid bench line rejected")
	}
	if r.Name != "BenchmarkRun-8" || r.Iterations != 100 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Metrics["ns/op"] != 11358 || r.Metrics["B/op"] != 120 {
		t.Fatalf("metrics %v", r.Metrics)
	}
	for _, line := range []string{
		"PASS",
		"ok  \tscalesim\t0.5s",
		"pkg: scalesim",
		"BenchmarkBroken notanumber ns/op",
		"BenchmarkNoMetrics-8 100",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Fatalf("non-result line parsed: %q", line)
		}
	}
}
