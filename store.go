package scalesim

import (
	"scalesim/internal/store"
)

// StoreSchema is the version tag carried by every durable-store artifact.
// Artifacts tagged with an unknown schema are rejected (ErrUnknownSchema)
// rather than silently misread.
const StoreSchema = store.ArtifactSchema

// StoreInfo is an offline inspection report for a campaign store directory
// (see CheckStore).
type StoreInfo struct {
	Artifacts   int      // artifacts that verified cleanly
	Corrupt     int      // artifacts failing verification (left in place)
	CorruptKeys []string // their job keys, sorted
	Quarantined int      // artifacts previously quarantined by campaigns
	Interrupted int      // journaled jobs started but never finished
	Bytes       int64    // total artifact bytes (clean + corrupt)
}

// CheckStore verifies every artifact in the campaign store at dir —
// schema tag, embedded key, and checksum — without modifying anything. It
// reports verification failures in the counts; the returned error is
// non-nil only when the store itself cannot be read (including a journal
// with an unknown schema, wrapping ErrUnknownSchema).
func CheckStore(dir string) (StoreInfo, error) {
	info, err := store.Check(dir)
	return StoreInfo(info), err
}

// ReadArtifact verifies and decodes one store artifact file, returning the
// result and the job key it was stored under. Errors wrap ErrStoreCorrupt
// or ErrUnknownSchema.
func ReadArtifact(path string) (*SimResult, string, error) {
	res, key, err := store.ReadArtifact(path)
	if err != nil {
		return nil, key, err
	}
	return resultFromInternal(res), key, nil
}
