module scalesim

go 1.22
