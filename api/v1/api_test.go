package apiv1

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"scalesim"
)

// sampleRequest builds a two-job batch exercising every JobSpec field,
// custom profile included.
func sampleRequest() *JobRequest {
	opts := scalesim.FastOptions()
	opts.Seed = 42
	custom := scalesim.Profile{
		Name:          "mine",
		BaseCPI:       0.7,
		LoadsPerKI:    220,
		StoresPerKI:   90,
		BranchesPerKI: 110,
		MLP:           2.5,
		CodeBytes:     1 << 16,
		Regions: []scalesim.Region{
			{SizeBytes: 1 << 24, Frac: 1.0, Pattern: scalesim.PatternZipf, ZipfS: 0.9},
		},
	}
	return NewJobRequest("tenant-a", []scalesim.CampaignJob{
		{
			Machine:    scalesim.MachineSpec{Cores: 2, Policy: scalesim.PolicyPRS},
			Benchmarks: []string{"mcf", "lbm"},
			Options:    opts,
		},
		{
			Machine:    scalesim.MachineSpec{Cores: 1, LLCPerCoreKB: 512},
			Benchmarks: []string{"mine"},
			Options:    opts,
			Extra:      []scalesim.Profile{custom},
		},
	})
}

func TestJobRequestRoundTrip(t *testing.T) {
	req := sampleRequest()
	var buf bytes.Buffer
	if err := Encode(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJobRequest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("round trip changed the request:\n got %+v\nwant %+v", got, req)
	}
	// And the batch conversion is an inverse pair.
	back := NewJobRequest(req.Client, got.CampaignJobs())
	if !reflect.DeepEqual(back, req) {
		t.Fatalf("CampaignJobs/NewJobRequest is not an inverse pair:\n got %+v\nwant %+v", back, req)
	}
}

func TestJobResponseRoundTrip(t *testing.T) {
	resp := &JobResponse{
		Schema: Schema,
		Outcomes: []JobOutcome{
			{Job: 0, Source: "compute", Result: &scalesim.SimResult{Machine: "m", WallClockSec: 1.5}},
			{Job: 1, Source: "coalesced", CacheHit: true},
			{Job: 2, Error: "unknown benchmark \"nope\""},
		},
		Stats: scalesim.CampaignStats{Jobs: 3, UniqueRuns: 1, CoalescedHits: 1, Failures: 1},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, resp); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJobResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, resp) {
		t.Fatalf("round trip changed the response:\n got %+v\nwant %+v", got, resp)
	}
}

// TestApproximateMarkerOnWire pins the surrogate tier's wire contract: a
// model-served outcome carries an explicit "approximate" marker, a
// ground-truth outcome omits the field entirely, and ModelHits is visible
// in the stats snapshot.
func TestApproximateMarkerOnWire(t *testing.T) {
	resp := &JobResponse{
		Schema: Schema,
		Outcomes: []JobOutcome{
			{Job: 0, Source: "model", CacheHit: true, Approximate: true, Result: &scalesim.SimResult{Machine: "m"}},
			{Job: 1, Source: "compute", Result: &scalesim.SimResult{Machine: "m"}},
		},
		Stats: scalesim.CampaignStats{Jobs: 2, UniqueRuns: 1, ModelHits: 1},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, resp); err != nil {
		t.Fatal(err)
	}
	wire := buf.String()
	if !strings.Contains(wire, `"approximate":true`) {
		t.Fatalf("model outcome lacks the approximate marker: %s", wire)
	}
	if strings.Count(wire, `"approximate"`) != 1 {
		t.Fatalf("approximate must be omitted from exact outcomes: %s", wire)
	}
	if !strings.Contains(wire, `"ModelHits":1`) {
		t.Fatalf("ModelHits missing from the stats snapshot: %s", wire)
	}
	got, err := DecodeJobResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, resp) {
		t.Fatalf("round trip changed the response:\n got %+v\nwant %+v", got, resp)
	}
}

// TestTuningOnWire pins the tuning wire contract: SimOptions.Tuning rides
// as an optional "tuning" object, is omitted entirely when nil, and
// payloads from clients predating the field decode unchanged under the
// strict decoder.
func TestTuningOnWire(t *testing.T) {
	opts := scalesim.FastOptions()
	opts.Tuning = &scalesim.Tuning{CoreWorkers: 4, EpochLogOps: 1024}
	req := NewJobRequest("", []scalesim.CampaignJob{{
		Machine:    scalesim.MachineSpec{Cores: 2, Policy: scalesim.PolicyPRS},
		Benchmarks: []string{"mcf", "lbm"},
		Options:    opts,
	}})
	var buf bytes.Buffer
	if err := Encode(&buf, req); err != nil {
		t.Fatal(err)
	}
	wire := buf.String()
	if !strings.Contains(wire, `"tuning":{"core_workers":4,"epoch_log_ops":1024}`) {
		t.Fatalf("tuning missing from the wire form: %s", wire)
	}
	got, err := DecodeJobRequest(strings.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("round trip changed the tuned request:\n got %+v\nwant %+v", got, req)
	}

	// Nil tuning never appears on the wire — old readers see old payloads.
	buf.Reset()
	if err := Encode(&buf, sampleRequest()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"tuning"`) {
		t.Fatalf("nil tuning must be omitted from the wire form: %s", buf.String())
	}

	// A payload written before the field existed decodes under the strict
	// decoder, with tuning staying nil (auto).
	old := `{"schema":"` + Schema + `","jobs":[{"machine":{"Cores":1,"Policy":"","Bandwidth":"","LLCPerCoreKB":0,"DRAMPerCoreGBps":0,"NoCPerCoreGBps":0},"benchmarks":["mcf"],"options":{"Seed":42}}]}`
	oldReq, err := DecodeJobRequest(strings.NewReader(old))
	if err != nil {
		t.Fatalf("pre-tuning payload must decode: %v", err)
	}
	if oldReq.Jobs[0].Options.Tuning != nil {
		t.Fatalf("pre-tuning payload decoded a tuning: %+v", oldReq.Jobs[0].Options.Tuning)
	}
}

func TestStatsAndHealthRoundTrip(t *testing.T) {
	stats := &StatsResponse{
		Schema:        Schema,
		Stats:         scalesim.CampaignStats{Jobs: 9, UniqueRuns: 4, CoalescedHits: 3, DiskHits: 2},
		QueueDepth:    1,
		QueueCapacity: 64,
		Shed:          5,
		Clients:       2,
		Draining:      true,
	}
	var buf bytes.Buffer
	if err := Encode(&buf, stats); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeStatsResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, stats) {
		t.Fatalf("round trip changed the stats:\n got %+v\nwant %+v", got, stats)
	}

	buf.Reset()
	errResp := &ErrorResponse{Schema: Schema, Error: "queue full", RetryAfterSec: 2}
	if err := Encode(&buf, errResp); err != nil {
		t.Fatal(err)
	}
	gotErr, err := DecodeErrorResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotErr, errResp) {
		t.Fatalf("round trip changed the error response:\n got %+v\nwant %+v", gotErr, errResp)
	}
}

func TestDecodeRejectsUnknownSchema(t *testing.T) {
	body := `{"schema":"scalesim/api/v99","jobs":[{"machine":{"Cores":1,"Policy":"","Bandwidth":"","LLCPerCoreKB":0,"DRAMPerCoreGBps":0,"NoCPerCoreGBps":0},"benchmarks":["mcf"],"options":{}}]}`
	_, err := DecodeJobRequest(strings.NewReader(body))
	if !errors.Is(err, scalesim.ErrUnknownSchema) {
		t.Fatalf("unknown schema error = %v, want ErrUnknownSchema", err)
	}
	_, err = DecodeJobResponse(strings.NewReader(`{"schema":"scalesim/api/v99","outcomes":null,"stats":{}}`))
	if !errors.Is(err, scalesim.ErrUnknownSchema) {
		t.Fatalf("unknown response schema error = %v, want ErrUnknownSchema", err)
	}
}

func TestDecodeRejectsMissingSchemaAndEmptyBatch(t *testing.T) {
	_, err := DecodeJobRequest(strings.NewReader(`{"jobs":[]}`))
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("missing schema error = %v, want ErrBadRequest", err)
	}
	_, err = DecodeJobRequest(strings.NewReader(`{"schema":"` + Schema + `","jobs":[]}`))
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("empty batch error = %v, want ErrBadRequest", err)
	}
}

func TestDecodeIsStrict(t *testing.T) {
	// A typo'd field must fail, not silently simulate the wrong point.
	body := `{"schema":"` + Schema + `","jobs":[{"machine":{"Cores":1},"benchmark":["mcf"],"options":{}}]}`
	if _, err := DecodeJobRequest(strings.NewReader(body)); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown field error = %v, want ErrBadRequest", err)
	}
	// Trailing data after the payload is malformed input.
	var buf bytes.Buffer
	if err := Encode(&buf, sampleRequest()); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(`{"second":"document"}`)
	if _, err := DecodeJobRequest(&buf); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("trailing data error = %v, want ErrBadRequest", err)
	}
}
