// Package apiv1 is the versioned external wire schema of the scalesim
// campaign service: the request/response types exchanged between
// `scalesim serve` and its clients (including the `scalesim request`
// subcommand), as JSON.
//
// There is exactly one external schema. The HTTP server and the CLI both
// speak these types — a tool that can read a JobResponse can read every
// response the service will ever send under this version.
//
// # Versioning
//
// Every payload carries an explicit "schema" field tagged
// "scalesim/api/v1" (the same pattern as scalesim/store/v1 artifacts and
// scalesim/trace/v1 traces). Decoders reject a payload whose tag they do
// not understand — wrapping scalesim.ErrUnknownSchema — rather than
// silently misreading it, and decode strictly (unknown fields are errors),
// so client/server drift fails loudly at the boundary instead of
// corrupting a campaign.
//
// # Shape
//
// A JobRequest is a campaign batch: one or more JobSpecs (machine spec,
// benchmark mix, simulation options, optional custom profiles — exactly
// the public scalesim.CampaignJob vocabulary). A JobResponse returns one
// JobOutcome per job in submission order, each reporting where its result
// came from ("compute", "memory", "coalesced", "disk", "model") plus the
// serving engine's CampaignStats snapshot. Results served by the surrogate
// model carry an explicit "approximate" marker.
package apiv1

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"scalesim"
)

// Schema is the version tag every apiv1 payload carries. Decoders reject
// payloads tagged with a schema they do not understand (ErrUnknownSchema)
// rather than silently misreading them.
const Schema = "scalesim/api/v1"

// ErrBadRequest marks a request that failed validation (missing schema,
// empty batch, unknown fields). Test with errors.Is; the detail is in the
// wrapping message.
var ErrBadRequest = errors.New("invalid api request")

// JobSpec is one design point of a request batch: the public campaign-job
// vocabulary (machine, one benchmark name per core, simulation options,
// optional custom profiles resolved by name before the suite) in wire form.
type JobSpec struct {
	Machine    scalesim.MachineSpec `json:"machine"`
	Benchmarks []string             `json:"benchmarks"`
	Options    scalesim.SimOptions  `json:"options"`
	Profiles   []scalesim.Profile   `json:"profiles,omitempty"`
}

// JobRequest is a campaign batch submitted to the service.
type JobRequest struct {
	// Schema must be the package Schema constant.
	Schema string `json:"schema"`
	// Client identifies the submitter for fair admission: the serving
	// queue round-robins across client identities, so one chatty client
	// cannot starve the others. Empty selects the anonymous bucket.
	Client string `json:"client,omitempty"`
	// Jobs are the design points, in the order outcomes are returned.
	Jobs []JobSpec `json:"jobs"`
}

// JobOutcome is one job's result on the wire: either a simulation result
// or an error string, plus where the result came from.
type JobOutcome struct {
	// Job is the submission-order index into JobRequest.Jobs.
	Job int `json:"job"`
	// Source is the ResultSource vocabulary: "compute", "memory",
	// "coalesced" (deduplicated against an identical in-flight request),
	// "disk", or "model" (predicted by the surrogate tier). Empty for jobs
	// that never ran.
	Source string `json:"source,omitempty"`
	// CacheHit reports whether the job was served without simulating.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Approximate marks a result predicted by the surrogate model rather
	// than simulated (source "model", or "coalesced" onto a model-served
	// flight). Clients needing ground truth must treat such results as
	// estimates; resubmitting against a service without the surrogate tier
	// (or after the gate tightens) yields the exact result.
	Approximate bool `json:"approximate,omitempty"`
	// Retries counts failed attempts before the final one.
	Retries int `json:"retries,omitempty"`
	// Error is the job's failure, if any (empty on success).
	Error string `json:"error,omitempty"`
	// Result is the simulation outcome (nil when Error is set).
	Result *scalesim.SimResult `json:"result,omitempty"`
}

// JobResponse is a completed batch: outcomes in submission order plus a
// snapshot of the serving engine's counters.
type JobResponse struct {
	Schema   string                 `json:"schema"`
	Outcomes []JobOutcome           `json:"outcomes"`
	Stats    scalesim.CampaignStats `json:"stats"`
}

// ErrorResponse is the body of every non-200 service answer.
type ErrorResponse struct {
	Schema string `json:"schema"`
	Error  string `json:"error"`
	// RetryAfterSec accompanies backpressure rejections (HTTP 429): the
	// client should wait this many seconds before retrying. Zero on
	// non-retryable errors.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Schema string `json:"schema"`
	// Status is "ok" while serving and "draining" once shutdown began.
	Status string `json:"status"`
}

// StatsResponse is the body of GET /statsz: the engine's campaign counters
// plus the admission queue's state.
type StatsResponse struct {
	Schema string `json:"schema"`
	// Stats aggregates every job the service has seen, requests coalesced
	// at admission included (CoalescedHits).
	Stats scalesim.CampaignStats `json:"stats"`
	// QueueDepth and QueueCapacity describe the admission queue; Shed
	// counts requests rejected with 429 because the queue was full.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	Shed          int `json:"shed"`
	// Clients is the number of distinct client identities currently
	// holding queued jobs.
	Clients int `json:"clients"`
	// Draining reports whether shutdown has begun.
	Draining bool `json:"draining"`
}

// Validate checks a decoded request: known schema, non-empty batch.
// Errors wrap ErrBadRequest (and scalesim.ErrUnknownSchema for a schema
// mismatch).
func (r *JobRequest) Validate() error {
	if err := checkSchema(r.Schema); err != nil {
		return err
	}
	if len(r.Jobs) == 0 {
		return fmt.Errorf("apiv1: %w: empty job batch", ErrBadRequest)
	}
	for i, j := range r.Jobs {
		if len(j.Benchmarks) == 0 {
			return fmt.Errorf("apiv1: %w: job %d has no benchmarks", ErrBadRequest, i)
		}
	}
	return nil
}

// checkSchema rejects a missing or unknown schema tag.
func checkSchema(schema string) error {
	switch schema {
	case Schema:
		return nil
	case "":
		return fmt.Errorf("apiv1: %w: missing schema tag (this build speaks %s)", ErrBadRequest, Schema)
	default:
		return fmt.Errorf("apiv1: %w %q (this build speaks %s)", scalesim.ErrUnknownSchema, schema, Schema)
	}
}

// DecodeJobRequest reads and validates one JobRequest. Decoding is strict:
// unknown fields are an error (wrapping ErrBadRequest), so a client typo
// ("benchmark" for "benchmarks") fails loudly instead of simulating the
// wrong design point.
func DecodeJobRequest(r io.Reader) (*JobRequest, error) {
	var req JobRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, fmt.Errorf("apiv1: %w: %v", ErrBadRequest, err)
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodeJobResponse reads one JobResponse, verifying its schema tag.
func DecodeJobResponse(r io.Reader) (*JobResponse, error) {
	var resp JobResponse
	if err := decodeStrict(r, &resp); err != nil {
		return nil, fmt.Errorf("apiv1: decoding response: %v", err)
	}
	if err := checkSchema(resp.Schema); err != nil {
		return nil, err
	}
	return &resp, nil
}

// DecodeStatsResponse reads one StatsResponse, verifying its schema tag.
func DecodeStatsResponse(r io.Reader) (*StatsResponse, error) {
	var resp StatsResponse
	if err := decodeStrict(r, &resp); err != nil {
		return nil, fmt.Errorf("apiv1: decoding stats: %v", err)
	}
	if err := checkSchema(resp.Schema); err != nil {
		return nil, err
	}
	return &resp, nil
}

// DecodeHealthResponse reads one HealthResponse, verifying its schema tag.
func DecodeHealthResponse(r io.Reader) (*HealthResponse, error) {
	var resp HealthResponse
	if err := decodeStrict(r, &resp); err != nil {
		return nil, fmt.Errorf("apiv1: decoding health: %v", err)
	}
	if err := checkSchema(resp.Schema); err != nil {
		return nil, err
	}
	return &resp, nil
}

// DecodeErrorResponse reads one ErrorResponse. The schema is verified so a
// client never mistakes an unrelated payload for a service error.
func DecodeErrorResponse(r io.Reader) (*ErrorResponse, error) {
	var resp ErrorResponse
	if err := decodeStrict(r, &resp); err != nil {
		return nil, fmt.Errorf("apiv1: decoding error response: %v", err)
	}
	if err := checkSchema(resp.Schema); err != nil {
		return nil, err
	}
	return &resp, nil
}

// decodeStrict decodes exactly one JSON value with unknown fields rejected
// and nothing but whitespace allowed after it.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// A second document in the stream is malformed input, not a request.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return errors.New("trailing data after payload")
	}
	return nil
}

// Encode writes v to w as one JSON document. It exists so callers on both
// sides of the wire share one encoding (and one place to change it).
func Encode(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	return enc.Encode(v)
}

// NewJobRequest assembles a tagged request from public campaign jobs — the
// bridge the CLI and tests use so the wire form and the batch form cannot
// drift.
func NewJobRequest(client string, jobs []scalesim.CampaignJob) *JobRequest {
	req := &JobRequest{Schema: Schema, Client: client}
	for _, j := range jobs {
		req.Jobs = append(req.Jobs, JobSpec{
			Machine:    j.Machine,
			Benchmarks: j.Benchmarks,
			Options:    j.Options,
			Profiles:   j.Extra,
		})
	}
	return req
}

// CampaignJobs converts the request batch back into public campaign jobs,
// the inverse of NewJobRequest.
func (r *JobRequest) CampaignJobs() []scalesim.CampaignJob {
	out := make([]scalesim.CampaignJob, len(r.Jobs))
	for i, j := range r.Jobs {
		out[i] = scalesim.CampaignJob{
			Machine:    j.Machine,
			Benchmarks: j.Benchmarks,
			Options:    j.Options,
			Extra:      j.Profiles,
		}
	}
	return out
}
