package scalesim

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"sort"
	"strings"
	"testing"
)

// TestContextPairingPinned pins the public API's context convention: every
// exported top-level function XContext taking a context.Context first must
// have an exported context-free wrapper X, and X's body must be exactly
// `return XContext(context.Background(), <args forwarded in order>)`. New
// entry points therefore cannot drift — a context-free function with its
// own body next to an XContext twin fails here.
func TestContextPairingPinned(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["scalesim"]
	if !ok {
		t.Fatalf("package scalesim not found in %v", pkgs)
	}

	funcs := map[string]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if ok && fd.Recv == nil && fd.Name.IsExported() {
				funcs[fd.Name.Name] = fd
			}
		}
	}

	names := make([]string, 0, len(funcs))
	for n := range funcs {
		names = append(names, n)
	}
	sort.Strings(names)

	pairs := 0
	for _, name := range names {
		fd := funcs[name]
		base, isCtx := strings.CutSuffix(name, "Context")
		if !isCtx || base == "" || !firstParamIsContext(fd) {
			continue
		}
		pairs++
		wrapper, ok := funcs[base]
		if !ok {
			t.Errorf("%s has no context-free wrapper %s", name, base)
			continue
		}
		if err := checkDelegation(wrapper, name); err != nil {
			t.Errorf("%s must delegate to %s: %v", base, name, err)
		}
	}
	if pairs < 3 {
		// Simulate/SimulateParallel/RunCampaign at minimum; a refactor that
		// hides them from the parser would silently void this test.
		t.Fatalf("found only %d *Context functions, expected at least 3", pairs)
	}
}

// firstParamIsContext reports whether fd's first parameter is a
// context.Context.
func firstParamIsContext(fd *ast.FuncDecl) bool {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	sel, ok := params.List[0].Type.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	return ok && ident.Name == "context"
}

// checkDelegation verifies that wrapper's body is a single return statement
// calling target with context.Background() first and the wrapper's own
// parameters forwarded in declaration order.
func checkDelegation(wrapper *ast.FuncDecl, target string) error {
	if wrapper.Body == nil || len(wrapper.Body.List) != 1 {
		return errFmt("body is not a single statement")
	}
	ret, ok := wrapper.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return errFmt("body is not a single return")
	}
	call, ok := ret.Results[0].(*ast.CallExpr)
	if !ok {
		return errFmt("return value is not a call")
	}
	callee, ok := call.Fun.(*ast.Ident)
	if !ok || callee.Name != target {
		return errFmt("calls %v, not %s", call.Fun, target)
	}
	if len(call.Args) == 0 {
		return errFmt("call has no arguments")
	}
	bg, ok := call.Args[0].(*ast.CallExpr)
	if !ok || exprString(bg.Fun) != "context.Background" {
		return errFmt("first argument is not context.Background()")
	}

	// Collect the wrapper's parameter names in declaration order.
	var params []string
	for _, field := range wrapper.Type.Params.List {
		for _, n := range field.Names {
			params = append(params, n.Name)
		}
	}
	rest := call.Args[1:]
	if len(rest) != len(params) {
		return errFmt("forwards %d arguments for %d parameters", len(rest), len(params))
	}
	for i, arg := range rest {
		name := ""
		switch a := arg.(type) {
		case *ast.Ident:
			name = a.Name
		case *ast.Ellipsis:
			return errFmt("unexpected ellipsis type in argument %d", i)
		}
		// A variadic forward parses as the parameter identifier with the
		// call's Ellipsis position set; the identifier is what matters.
		if name != params[i] {
			return errFmt("argument %d is %s, want parameter %s", i, exprString(arg), params[i])
		}
	}
	return nil
}

func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	default:
		return "?"
	}
}

func errFmt(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}
