package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// daemon is a `scalesim serve` child process under test.
type daemon struct {
	cmd  *exec.Cmd
	out  *bytes.Buffer
	addr string
}

// startDaemon re-execs the test binary as `scalesim serve` on an
// ephemeral port and waits until the bound address is published.
func startDaemon(t *testing.T, extra ...string) *daemon {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{"serve", "-addr", "127.0.0.1:0", "-addrfile", addrFile, "-workers", "2"}, extra...)
	d := &daemon{cmd: exec.Command(os.Args[0], "-test.run=^$"), out: &bytes.Buffer{}}
	d.cmd.Env = append(os.Environ(), "SCALESIM_CLI_ARGS="+strings.Join(args, " "))
	d.cmd.Stdout = d.out
	d.cmd.Stderr = d.out
	if err := d.cmd.Start(); err != nil {
		t.Fatalf("start serve: %v", err)
	}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			d.cmd.Process.Kill()
			d.cmd.Wait()
		}
	})
	for i := 0; i < 5000; i++ {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			d.addr = string(b)
			return d
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("serve never published its address; output:\n%s", d.out)
	return nil
}

// stop sends SIGINT and waits for a clean drain.
func (d *daemon) stop(t *testing.T) string {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatalf("signal serve: %v", err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("serve exited uncleanly after SIGINT: %v\n%s", err, d.out)
	}
	return d.out.String()
}

// TestServeAndRequestEndToEnd drives the daemon exactly as a shell user
// would: start `scalesim serve` against a store, submit requests with
// `scalesim request`, drain it with SIGINT, then restart a fresh replica
// on the same store and watch the design point come back from disk.
func TestServeAndRequestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary")
	}
	storeDir := filepath.Join(t.TempDir(), "store")
	d := startDaemon(t, "-store", storeDir)

	request := func(client string) string {
		out, code := runCLI(t, "request", "-server", "http://"+d.addr,
			"-machine", "1:PRS", "-bench", "mcf", "-fast", "-client", client)
		if code != 0 {
			t.Fatalf("request exited %d:\n%s", code, out)
		}
		if !strings.Contains(out, "average IPC:") {
			t.Fatalf("request output lacks the result table:\n%s", out)
		}
		return out
	}

	if out := request("a"); !strings.Contains(out, "server: compute") {
		t.Errorf("first request not computed:\n%s", out)
	}
	if out := request("b"); !strings.Contains(out, "server: memory") {
		t.Errorf("repeat request not served from memory:\n%s", out)
	}

	logs := d.stop(t)
	if !strings.Contains(logs, "drained; final stats:") {
		t.Errorf("serve did not report a drained shutdown:\n%s", logs)
	}

	// A fresh replica on the same store serves the point from disk.
	d2 := startDaemon(t, "-store", storeDir)
	out, code := runCLI(t, "request", "-server", "http://"+d2.addr,
		"-machine", "1:PRS", "-bench", "mcf", "-fast")
	if code != 0 {
		t.Fatalf("request to replica exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "server: disk") {
		t.Errorf("replica request not served from the shared store:\n%s", out)
	}
	d2.stop(t)
}

// TestRequestWithoutServerFails: the client reports a clean error when no
// daemon is listening.
func TestRequestWithoutServerFails(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary")
	}
	out, code := runCLI(t, "request", "-server", "http://127.0.0.1:1", "-bench", "mcf", "-fast")
	if code == 0 {
		t.Fatalf("request with no server exited 0:\n%s", out)
	}
}
