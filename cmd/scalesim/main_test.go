package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"scalesim/internal/sim"
	"scalesim/internal/store"
)

// TestMain lets a test re-exec this binary as the CLI: when
// SCALESIM_CLI_ARGS is set the process runs main() with those arguments
// instead of the test suite, so exit codes and output are observed exactly
// as a shell would see them.
func TestMain(m *testing.M) {
	if args := os.Getenv("SCALESIM_CLI_ARGS"); args != "" {
		os.Args = append([]string{"scalesim"}, strings.Split(args, " ")...)
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runCLI re-executes the test binary as `scalesim <args...>` and returns its
// combined output and exit code.
func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(), "SCALESIM_CLI_ARGS="+strings.Join(args, " "))
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("re-exec %v: %v\n%s", args, err, out)
	}
	return string(out), ee.ExitCode()
}

// seedStore creates a store at dir holding one verified artifact under key.
func seedStore(t *testing.T, dir, key string) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Begin(key); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(key, &sim.Result{ConfigName: "test"}); err != nil {
		t.Fatal(err)
	}
}

// artifactPath mirrors the store's sharded object layout.
func artifactPath(dir, key string) string {
	return filepath.Join(dir, "objects", key[:2], key+".json")
}

func TestStoreVerifyClean(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, "abcd1234")
	out, code := runCLI(t, "store", "-dir", dir)
	if code != 0 {
		t.Fatalf("clean store exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "1 verified artifacts") {
		t.Errorf("output lacks verified-artifact count:\n%s", out)
	}
	if !strings.Contains(out, "0 corrupt, 0 quarantined, 0 interrupted") {
		t.Errorf("output lacks clean counts:\n%s", out)
	}
}

func TestStoreQuarantinedArtifactStillExitsZero(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, "abcd1234")
	qdir := filepath.Join(dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(qdir, "old.json"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := runCLI(t, "store", "-dir", dir)
	if code != 0 {
		t.Fatalf("quarantined-only store exited %d; quarantine holds already-handled damage:\n%s", code, out)
	}
	if !strings.Contains(out, "1 quarantined") {
		t.Errorf("output lacks quarantine count:\n%s", out)
	}
}

func TestStoreCorruptArtifactExitsOne(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, "abcd1234")
	if err := os.WriteFile(artifactPath(dir, "abcd1234"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := runCLI(t, "store", "-dir", dir)
	if code != 1 {
		t.Fatalf("corrupt store exited %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "corrupt: abcd1234") {
		t.Errorf("output does not name the corrupt key:\n%s", out)
	}
}

func TestStoreUnknownArtifactSchemaExitsOne(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, "abcd1234")
	env, err := json.Marshal(map[string]any{"schema": "scalesim/store/v99", "key": "abcd1234"})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(artifactPath(dir, "abcd1234"), env, 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := runCLI(t, "store", "-dir", dir)
	if code != 1 {
		t.Fatalf("unknown-schema artifact exited %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "1 corrupt") {
		t.Errorf("unknown-schema artifact not counted corrupt:\n%s", out)
	}
}

func TestStoreUnknownJournalSchemaExitsOne(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, "abcd1234")
	if err := os.WriteFile(filepath.Join(dir, "journal.log"), []byte("scalesim/journal/v99\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := runCLI(t, "store", "-dir", dir)
	if code != 1 {
		t.Fatalf("unknown journal schema exited %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "unknown schema") {
		t.Errorf("output does not report the schema failure:\n%s", out)
	}
}

func TestStoreMissingDirFlagExitsNonzero(t *testing.T) {
	out, code := runCLI(t, "store")
	if code == 0 {
		t.Fatalf("store without -dir exited 0:\n%s", out)
	}
	if !strings.Contains(out, "-dir is required") {
		t.Errorf("output lacks the usage hint:\n%s", out)
	}
}
