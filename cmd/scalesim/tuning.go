package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"

	"scalesim"
)

// deprecationOut receives deprecated-flag warnings; tests swap it to
// capture the message.
var deprecationOut io.Writer = os.Stderr

// workersWarnOnce collapses repeated -workers uses (several subcommand
// FlagSets share tuningFlags) into one warning per process.
var workersWarnOnce sync.Once

// warnDeprecatedWorkers prints the one-time -workers deprecation warning
// if fs parsed the deprecated alias.
func warnDeprecatedWorkers(fs *flag.FlagSet) {
	fs.Visit(func(f *flag.Flag) {
		if f.Name != "workers" {
			return
		}
		workersWarnOnce.Do(func() {
			fmt.Fprintln(deprecationOut, "scalesim: -workers is deprecated; use -campaign-workers (same meaning: concurrent campaign jobs)")
		})
	})
}

// tuningFlags registers the shared performance-tuning flags, following the
// -<subsystem>-<knob> naming convention, and returns a closure producing
// the resulting *scalesim.Tuning after parsing (nil when every knob is
// auto). When campaign is true the job-level knob is registered too, as
// -campaign-workers, with the historical -workers spelling kept as a
// deprecated alias bound to the same value.
func tuningFlags(fs *flag.FlagSet, campaign bool) func() *scalesim.Tuning {
	core := fs.Int("core-workers", 0, "per-simulation epoch workers (0 = auto; any value yields identical results)")
	var jobs *int
	if campaign {
		jobs = fs.Int("campaign-workers", 0, "concurrent campaign jobs (0 = GOMAXPROCS)")
		fs.IntVar(jobs, "workers", 0, "deprecated alias of -campaign-workers")
	}
	return func() *scalesim.Tuning {
		t := &scalesim.Tuning{CoreWorkers: *core}
		if jobs != nil {
			warnDeprecatedWorkers(fs)
			t.CampaignWorkers = *jobs
		}
		if *t == (scalesim.Tuning{}) {
			return nil
		}
		return t
	}
}

// profileFlags registers -cpuprofile and -memprofile on fs. The returned
// start function begins CPU profiling (when requested) and returns a stop
// function to defer: it stops the CPU profile and writes the heap profile
// on the way out.
func profileFlags(fs *flag.FlagSet) func() func() {
	cpu := fs.String("cpuprofile", "", "write a pprof CPU profile to FILE")
	mem := fs.String("memprofile", "", "write a pprof heap profile to FILE at exit")
	return func() func() {
		var f *os.File
		if *cpu != "" {
			var err error
			f, err = os.Create(*cpu)
			if err != nil {
				log.Fatal(err)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				log.Fatal(err)
			}
		}
		return func() {
			if f != nil {
				pprof.StopCPUProfile()
				if err := f.Close(); err != nil {
					log.Fatal(err)
				}
			}
			if *mem != "" {
				mf, err := os.Create(*mem)
				if err != nil {
					log.Fatal(err)
				}
				runtime.GC() // settle the heap so the profile reflects live data
				if err := pprof.WriteHeapProfile(mf); err != nil {
					log.Fatal(err)
				}
				if err := mf.Close(); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
}
