// Command scalesim is the interactive CLI for the scale-model simulation
// library: inspect configurations, simulate workloads on scale models or
// the target system, and predict target performance from single-core
// scale-model runs.
//
// Usage:
//
//	scalesim table1 [-bw MC-first|MB-first]
//	scalesim suite
//	scalesim simulate -machine <cores>[:<policy>] -bench <a,b,...> [-fast] [-core-workers N]
//	scalesim predict -bench <name> [-fast]
//	scalesim experiment -fig <id> [-fast]
//	scalesim serve [-addr <host:port>] [-campaign-workers N] [-store <dir>]
//	scalesim request -bench <a,b,...> [-server <url>]
//
// Performance flags follow a -<subsystem>-<knob> convention: -core-workers
// (epoch parallelism inside one simulation), -campaign-workers (concurrent
// jobs; -workers remains a deprecated alias), -surrogate-* (learned fast
// path). None of them change results — only wall-clock. simulate and sweep
// also take -cpuprofile/-memprofile to capture pprof profiles.
//
// Examples:
//
//	scalesim simulate -machine 1:PRS -bench lbm
//	scalesim simulate -machine 32:target -bench "lbm x32"
//	scalesim predict -bench mcf
//	scalesim experiment -fig 3 -fast
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"scalesim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scalesim: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "table1":
		cmdTable1(os.Args[2:])
	case "suite":
		cmdSuite()
	case "simulate":
		cmdSimulate(os.Args[2:])
	case "predict":
		cmdPredict(os.Args[2:])
	case "experiment":
		cmdExperiment(os.Args[2:])
	case "sweep":
		cmdSweep(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	case "store":
		cmdStore(os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	case "request":
		cmdRequest(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		log.Printf("unknown command %q", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  scalesim table1 [-bw MC-first|MB-first]   print the Table I scale-model construction
  scalesim suite                            list the 29-benchmark workload suite
  scalesim simulate -machine C[:POLICY] -bench A,B,... [-fast] [-trace FILE] [-stats] [-store DIR]
                                            simulate a workload ("lbm x4" repeats);
                                            -trace streams per-epoch JSONL, -stats
                                            prints the per-component trace summary,
                                            -store reuses results across invocations
  scalesim predict -bench NAME [-fast]      predict 32-core IPC from a 1-core scale model
  scalesim experiment -fig ID [-fast]       regenerate one figure (3..12, speedup)
  scalesim sweep -knob llc|dram -bench NAME [-cores N] [-campaign-workers N] [-fast] [-store DIR]
                                            concurrent design-space sweep on a scale model
  scalesim stats -trace FILE                summarise a JSONL trace file
  scalesim store -dir DIR                   verify a durable campaign store (artifacts,
                                            checksums, interrupted jobs)
  scalesim serve [-addr HOST:PORT] [-campaign-workers N] [-queue N] [-store DIR]
                                            run the campaign service: coalesces identical
                                            concurrent requests, bounds admission with a
                                            client-fair queue, drains on SIGINT/SIGTERM

performance flags (identical results at any setting, wall-clock only):
  -core-workers N       epoch workers inside one simulation (0 = auto)
  -campaign-workers N   concurrent campaign jobs (0 = GOMAXPROCS); -workers
                        is a deprecated alias
  -cpuprofile FILE      write a pprof CPU profile (simulate, sweep)
  -memprofile FILE      write a pprof heap profile at exit (simulate, sweep)
  scalesim request -bench A,B,... [-machine C[:POLICY]] [-server URL] [-client ID] [-fast]
                                            submit one design point to a running daemon`)
}

func options(fast bool) scalesim.SimOptions {
	if fast {
		return scalesim.FastOptions()
	}
	return scalesim.DefaultOptions()
}

func cmdTable1(args []string) {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	bw := fs.String("bw", string(scalesim.BandwidthMCFirst), "bandwidth scaling order (MC-first or MB-first)")
	_ = fs.Parse(args)
	rows, err := scalesim.TableI(scalesim.Bandwidth(*bw))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Scale-model construction (%s):\n", *bw)
	for _, r := range rows {
		fmt.Printf("  %2d cores | %-18s | %-34s | %s\n", r.Cores, r.LLC, r.NoC, r.DRAM)
	}
}

func cmdSuite() {
	fmt.Println("Workload suite (29 synthetic SPEC-CPU2017-like benchmarks):")
	for _, p := range scalesim.Suite() {
		totalMem := p.LoadsPerKI + p.StoresPerKI
		var biggest int64
		for _, r := range p.Regions {
			if r.SizeBytes > biggest {
				biggest = r.SizeBytes
			}
		}
		fmt.Printf("  %-11s baseCPI %.2f  mem/KI %3d  branches/KI %3d  MLP %4.1f  max region %4d MB\n",
			p.Name, p.BaseCPI, totalMem, p.BranchesPerKI, p.MLP, biggest>>20)
	}
}

// parseWorkload expands "lbm x4,gcc" into [lbm lbm lbm lbm gcc].
func parseWorkload(spec string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, count := part, 1
		if fields := strings.Fields(part); len(fields) == 2 && strings.HasPrefix(fields[1], "x") {
			n, err := strconv.Atoi(fields[1][1:])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad repeat count in %q", part)
			}
			name, count = fields[0], n
		}
		for i := 0; i < count; i++ {
			out = append(out, name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty workload")
	}
	return out, nil
}

func parseMachine(spec string) (scalesim.MachineSpec, error) {
	parts := strings.SplitN(spec, ":", 2)
	cores, err := strconv.Atoi(parts[0])
	if err != nil {
		return scalesim.MachineSpec{}, fmt.Errorf("bad core count %q", parts[0])
	}
	m := scalesim.MachineSpec{Cores: cores}
	if len(parts) == 2 {
		m.Policy = scalesim.Policy(parts[1])
		if err := m.Policy.Validate(); err != nil {
			return scalesim.MachineSpec{}, err
		}
	}
	return m, nil
}

func cmdSimulate(args []string) {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	machine := fs.String("machine", "1:PRS", "machine spec: <cores>[:<policy>] (policies: target, PRS, NRS, PRS-LLC, PRS-DRAM)")
	bench := fs.String("bench", "", "workload: comma-separated benchmarks, 'name xN' repeats")
	bwOrder := fs.String("bw", string(scalesim.BandwidthMCFirst), "DRAM bandwidth scaling order")
	fast := fs.Bool("fast", false, "reduced fidelity")
	traceFile := fs.String("trace", "", "write the per-epoch telemetry trace to FILE as JSON Lines")
	stats := fs.Bool("stats", false, "print the per-component trace summary after the run")
	storeDir := fs.String("store", "", "durable result store directory: reuse results across invocations")
	tuning := tuningFlags(fs, false)
	profile := profileFlags(fs)
	_ = fs.Parse(args)

	wl, err := parseWorkload(*bench)
	if err != nil {
		log.Fatal(err)
	}
	m, err := parseMachine(*machine)
	if err != nil {
		log.Fatal(err)
	}
	m.Bandwidth = scalesim.Bandwidth(*bwOrder)
	opts := options(*fast)
	opts.Trace = *traceFile != "" || *stats
	opts.Tuning = tuning()
	defer profile()()

	var res *scalesim.SimResult
	if *storeDir != "" {
		// Route through the campaign engine so the durable store serves
		// (and records) the design point.
		campaign := scalesim.Campaign{
			Jobs:  []scalesim.CampaignJob{{Machine: m, Benchmarks: wl, Options: opts}},
			Store: *storeDir,
		}
		cres, err := scalesim.RunCampaign(campaign)
		if err != nil {
			log.Fatal(err)
		}
		oc := cres.Outcomes[0]
		if oc.Err != nil {
			log.Fatal(oc.Err)
		}
		res = oc.Result
		fmt.Printf("store: %s (%s)\n", oc.Source, cres.Stats)
	} else {
		res, err = scalesim.Simulate(m, wl, opts)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := scalesim.WriteTraceJSONL(f, res.Trace); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d epoch snapshots to %s\n", len(res.Trace), *traceFile)
	}
	printResult(res)
	if *stats {
		fmt.Println(scalesim.SummarizeTrace(res.Trace).String())
	}
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	traceFile := fs.String("trace", "", "JSONL trace file to summarise (written by simulate -trace)")
	_ = fs.Parse(args)
	if *traceFile == "" {
		log.Fatal("stats: -trace is required")
	}
	f, err := os.Open(*traceFile)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	trace, err := scalesim.ReadTraceJSONL(f)
	if err != nil {
		log.Fatal(err)
	}
	if len(trace) == 0 {
		log.Fatalf("stats: %s holds no epoch snapshots", *traceFile)
	}
	fmt.Println(scalesim.SummarizeTrace(trace).String())
}

func cmdStore(args []string) {
	fs := flag.NewFlagSet("store", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory to verify")
	_ = fs.Parse(args)
	if *dir == "" {
		log.Fatal("store: -dir is required")
	}
	info, err := scalesim.CheckStore(*dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store %s (schema %s):\n", *dir, scalesim.StoreSchema)
	fmt.Printf("  %d verified artifacts (%d bytes)\n", info.Artifacts, info.Bytes)
	fmt.Printf("  %d corrupt, %d quarantined, %d interrupted jobs\n",
		info.Corrupt, info.Quarantined, info.Interrupted)
	for _, k := range info.CorruptKeys {
		fmt.Printf("  corrupt: %s\n", k)
	}
	if info.Corrupt > 0 {
		os.Exit(1)
	}
}

func cmdPredict(args []string) {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	bench := fs.String("bench", "", "benchmark to predict")
	fast := fs.Bool("fast", false, "reduced fidelity")
	validate := fs.Bool("validate", true, "also simulate the target for comparison")
	_ = fs.Parse(args)
	if *bench == "" {
		log.Fatal("predict: -bench is required")
	}
	ex, err := scalesim.NewExperiments(options(*fast))
	if err != nil {
		log.Fatal(err)
	}
	pred, err := ex.PredictTargetIPC(*bench)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: predicted per-core IPC on the 32-core target: %.3f (SVM-log regression, 1-core scale model)\n", *bench, pred)
	if *validate {
		actual, err := ex.ActualTargetIPC(*bench)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: simulated target IPC: %.3f  (prediction error %.1f%%)\n",
			*bench, actual, 100*abs(pred-actual)/actual)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func cmdExperiment(args []string) {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	fig := fs.String("fig", "", "figure id: 3,4,5,6,7,8,9,10,11,12 or speedup")
	fast := fs.Bool("fast", false, "reduced fidelity")
	_ = fs.Parse(args)
	ex, err := scalesim.NewExperiments(options(*fast))
	if err != nil {
		log.Fatal(err)
	}
	switch *fig {
	case "3":
		show(ex.Fig3Construction())
	case "4":
		show(ex.Fig4Homogeneous())
	case "5":
		show(ex.Fig5Heterogeneous())
	case "6":
		show(ex.Fig6STP())
	case "7":
		show(ex.Fig7ErrorVsSpeedup())
	case "8":
		show(ex.Fig8BandwidthScaling())
	case "9":
		show(ex.Fig9RegressionForms())
	case "10":
		show(ex.Fig10Inputs())
	case "11":
		show(ex.Fig11ScaleModelCount())
	case "12":
		show(ex.Fig12Bandwidth())
	case "speedup":
		rows, err := ex.SimulationTimeStudy()
		if err != nil {
			log.Fatal(err)
		}
		base := rows[len(rows)-1].TotalSecs
		for _, r := range rows {
			fmt.Printf("%2d cores: %8.2fs (%6.1f ms/benchmark), speedup vs target %5.1fx\n",
				r.Cores, r.TotalSecs, r.PerBenchMs, base/r.TotalSecs)
		}
	default:
		log.Fatalf("unknown figure %q", *fig)
	}
}

// surrogateFlags registers the shared surrogate-tier flags on fs and
// returns a closure producing the resulting configuration after parsing
// (nil when the tier stays off).
func surrogateFlags(fs *flag.FlagSet) func() *scalesim.SurrogateConfig {
	on := fs.Bool("surrogate", false, "enable the learned fast path (memory → disk → model → compute)")
	min := fs.Int("surrogate-min", 0, "ground-truth points required before the model serves (0 = default)")
	gate := fs.Float64("surrogate-gate", 0, "ensemble-agreement gate: max relative per-tree std (0 = default)")
	dist := fs.Float64("surrogate-dist", 0, "novelty gate: max scaled distance to the nearest training point (0 = default)")
	return func() *scalesim.SurrogateConfig {
		if !*on {
			return nil
		}
		return &scalesim.SurrogateConfig{MinTrain: *min, VarGate: *gate, DistGate: *dist}
	}
}

func cmdSweep(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	knob := fs.String("knob", "llc", "what to sweep: llc (per-core KB) or dram (per-core GB/s)")
	bench := fs.String("bench", "xalancbmk", "benchmark to sweep")
	cores := fs.Int("cores", 1, "scale-model core count")
	fast := fs.Bool("fast", true, "reduced fidelity")
	storeDir := fs.String("store", "", "durable result store directory: reuse results across invocations")
	dense := fs.Bool("dense", false, "also sweep the knob-grid midpoints (appended after the base grid)")
	surrogate := surrogateFlags(fs)
	tuning := tuningFlags(fs, true)
	profile := profileFlags(fs)
	_ = fs.Parse(args)
	defer profile()()

	type point struct {
		label string
		spec  scalesim.MachineSpec
	}
	var points []point
	switch *knob {
	case "llc":
		if *dense {
			// LLC capacities must keep power-of-two set counts, so the grid
			// has no valid midpoints to densify with.
			log.Fatal("-dense requires -knob dram (LLC sizes are constrained to power-of-two sets)")
		}
		for _, kb := range []int{256, 512, 1024, 2048, 4096} {
			points = append(points, point{
				label: fmt.Sprintf("%4d KB LLC/core", kb),
				spec:  scalesim.MachineSpec{Cores: *cores, LLCPerCoreKB: kb},
			})
		}
	case "dram":
		grid := []float64{1, 2, 4, 8, 16}
		if *dense {
			// Midpoints ride after the base grid: with the surrogate on, the
			// base points train the model and the midpoints exercise it.
			for i := 0; i+1 < 5; i++ {
				grid = append(grid, (grid[i]+grid[i+1])/2)
			}
		}
		for _, gb := range grid {
			points = append(points, point{
				label: fmt.Sprintf("%4.1f GB/s DRAM/core", gb),
				spec:  scalesim.MachineSpec{Cores: *cores, DRAMPerCoreGBps: gb},
			})
		}
	default:
		log.Fatalf("unknown knob %q", *knob)
	}

	wl := make([]string, *cores)
	for i := range wl {
		wl[i] = *bench
	}
	campaign := scalesim.Campaign{Tuning: tuning(), Store: *storeDir, Surrogate: surrogate()}
	for _, p := range points {
		campaign.Jobs = append(campaign.Jobs, scalesim.CampaignJob{
			Machine:    p.spec,
			Benchmarks: wl,
			Options:    options(*fast),
		})
	}
	fmt.Printf("design-space sweep: %s on a %d-core scale model (%d design points)\n",
		*bench, *cores, len(campaign.Jobs))
	res, err := scalesim.RunCampaignContext(context.Background(), campaign)
	if err != nil {
		log.Fatal(err)
	}
	for i, o := range res.Outcomes {
		if o.Err != nil {
			log.Fatal(o.Err)
		}
		c := o.Result.Cores[0]
		marker := ""
		if o.Approximate {
			marker = "  (approximate, from model)"
		}
		fmt.Printf("  %s: IPC %6.3f  LLC MPKI %6.2f  DRAM util %.2f%s\n",
			points[i].label, o.Result.AverageIPC(), c.LLCMPKI, o.Result.DRAMUtilization, marker)
	}
	fmt.Printf("  campaign: %s\n", res.Stats)
}

func show(res fmt.Stringer, err error) {
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.String())
}
