package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"scalesim"
	apiv1 "scalesim/api/v1"
	"scalesim/internal/server"
)

// cmdServe runs the campaign service: an HTTP daemon that executes
// simulate requests through the shared memoization hierarchy, coalescing
// identical concurrent requests and shedding load past the queue bound.
// SIGINT/SIGTERM drains gracefully: in-flight jobs finish (and persist to
// the store) before the process exits.
func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8023", "listen address (port 0 picks an ephemeral port)")
	addrFile := fs.String("addrfile", "", "write the bound address to FILE once listening (for scripts using port 0)")
	queue := fs.Int("queue", server.DefaultQueueDepth, "admission queue depth; beyond it requests are shed with 429")
	storeDir := fs.String("store", "", "durable result store directory, shareable between replicas")
	retryAfter := fs.Int("retry-after", 1, "Retry-After seconds sent with 429 responses")
	drainTimeout := fs.Duration("drain-timeout", 0, "bound on the graceful drain (0 waits for in-flight jobs)")
	surrogate := surrogateFlags(fs)
	tuning := tuningFlags(fs, true)
	_ = fs.Parse(args)

	tun := tuning()
	var workers int
	if tun != nil {
		// The server's simulation bound is the job-level knob; the rest of
		// the tuning (the CoreWorkers default for served jobs) rides into
		// the service.
		workers = tun.CampaignWorkers
	}
	svc, err := scalesim.NewService(scalesim.ServiceConfig{Store: *storeDir, Surrogate: surrogate(), Tuning: tun})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	cfg := server.Config{
		Workers:       workers,
		QueueDepth:    *queue,
		RetryAfterSec: *retryAfter,
		DrainTimeout:  *drainTimeout,
		OnListen: func(a net.Addr) {
			log.Printf("serving on %s (workers %d, queue %d)", a, workers, *queue)
			if *addrFile != "" {
				if err := os.WriteFile(*addrFile, []byte(a.String()), 0o644); err != nil {
					log.Fatalf("writing -addrfile: %v", err)
				}
			}
		},
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := server.ListenAndServeContext(ctx, *addr, server.NewServiceBackend(svc), cfg); err != nil {
		log.Fatal(err)
	}
	log.Printf("drained; final stats: %s", svc.Stats())
}

// cmdRequest is the wire client: submit one design point to a running
// `scalesim serve` daemon and print the outcome like `simulate` does.
func cmdRequest(args []string) {
	fs := flag.NewFlagSet("request", flag.ExitOnError)
	serverURL := fs.String("server", "http://127.0.0.1:8023", "base URL of the scalesim serve daemon")
	machine := fs.String("machine", "1:PRS", "machine spec: <cores>[:<policy>]")
	bench := fs.String("bench", "", "workload: comma-separated benchmarks, 'name xN' repeats")
	bwOrder := fs.String("bw", string(scalesim.BandwidthMCFirst), "DRAM bandwidth scaling order")
	fast := fs.Bool("fast", false, "reduced fidelity")
	client := fs.String("client", "", "client identity for fair admission (empty = anonymous)")
	_ = fs.Parse(args)

	wl, err := parseWorkload(*bench)
	if err != nil {
		log.Fatal(err)
	}
	m, err := parseMachine(*machine)
	if err != nil {
		log.Fatal(err)
	}
	m.Bandwidth = scalesim.Bandwidth(*bwOrder)

	job := scalesim.CampaignJob{Machine: m, Benchmarks: wl, Options: options(*fast)}
	var buf bytes.Buffer
	if err := apiv1.Encode(&buf, apiv1.NewJobRequest(*client, []scalesim.CampaignJob{job})); err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(*serverURL+"/v1/jobs", "application/json", &buf)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusOK {
		apiErr, derr := apiv1.DecodeErrorResponse(resp.Body)
		if derr != nil {
			log.Fatalf("server returned %s (and an undecodable body: %v)", resp.Status, derr)
		}
		if apiErr.RetryAfterSec > 0 {
			log.Fatalf("server returned %s: %s (retry after %ds)", resp.Status, apiErr.Error, apiErr.RetryAfterSec)
		}
		log.Fatalf("server returned %s: %s", resp.Status, apiErr.Error)
	}
	out, err := apiv1.DecodeJobResponse(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	oc := out.Outcomes[0]
	if oc.Error != "" {
		log.Fatalf("job failed: %s", oc.Error)
	}
	marker := ""
	if oc.Approximate {
		marker = ", approximate"
	}
	fmt.Printf("server: %s%s (%s)\n", oc.Source, marker, out.Stats)
	printResult(oc.Result)
}

// printResult renders a simulation result the way `simulate` does, so the
// two entry points stay comparable on a terminal.
func printResult(res *scalesim.SimResult) {
	fmt.Printf("machine %s  (DRAM util %.2f, NoC util %.2f, %.2fs wall-clock)\n",
		res.Machine, res.DRAMUtilization, res.NoCUtilization, res.WallClockSec)
	fmt.Printf("  %-4s %-11s %8s %10s %9s %9s\n", "core", "benchmark", "IPC", "LLC MPKI", "BW B/cyc", "mispred")
	for _, c := range res.Cores {
		fmt.Printf("  %-4d %-11s %8.3f %10.2f %9.3f %8.1f%%\n",
			c.Core, c.Benchmark, c.IPC, c.LLCMPKI, c.BWBytesPerCycle, 100*c.BranchMispredictRate)
	}
	fmt.Printf("  average IPC: %.3f\n", res.AverageIPC())
}
