package main

import (
	"bytes"
	"flag"
	"strings"
	"sync"
	"testing"
)

// resetWorkersWarning swaps the warning writer for a buffer and re-arms
// the once, restoring both on cleanup.
func resetWorkersWarning(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	prevOut := deprecationOut
	deprecationOut = &buf
	workersWarnOnce = sync.Once{}
	t.Cleanup(func() {
		deprecationOut = prevOut
		workersWarnOnce = sync.Once{}
	})
	return &buf
}

const workersWarning = "scalesim: -workers is deprecated; use -campaign-workers (same meaning: concurrent campaign jobs)"

func TestDeprecatedWorkersFlagWarnsOnce(t *testing.T) {
	buf := resetWorkersWarning(t)

	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	tuning := tuningFlags(fs, true)
	if err := fs.Parse([]string{"-workers", "3"}); err != nil {
		t.Fatalf("parse: %v", err)
	}
	tun := tuning()
	if tun == nil || tun.CampaignWorkers != 3 {
		t.Fatalf("tuning after -workers 3: %+v, want CampaignWorkers 3", tun)
	}
	if got := strings.TrimSpace(buf.String()); got != workersWarning {
		t.Errorf("warning = %q, want %q", got, workersWarning)
	}

	// A second use in the same process (another subcommand's FlagSet) must
	// not repeat the warning.
	tuning() // the same closure re-invoked is the cheapest repeat
	fs2 := flag.NewFlagSet("serve", flag.ContinueOnError)
	tuning2 := tuningFlags(fs2, true)
	if err := fs2.Parse([]string{"-workers", "2"}); err != nil {
		t.Fatalf("parse: %v", err)
	}
	tuning2()
	if got := strings.Count(buf.String(), "deprecated"); got != 1 {
		t.Errorf("warning printed %d times, want once:\n%s", got, buf.String())
	}
}

func TestCampaignWorkersFlagDoesNotWarn(t *testing.T) {
	buf := resetWorkersWarning(t)

	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	tuning := tuningFlags(fs, true)
	if err := fs.Parse([]string{"-campaign-workers", "4"}); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if tun := tuning(); tun == nil || tun.CampaignWorkers != 4 {
		t.Fatalf("tuning after -campaign-workers 4: %+v", tun)
	}
	if buf.Len() != 0 {
		t.Errorf("unexpected warning for the canonical spelling: %q", buf.String())
	}
}
