// Command experiments regenerates every table and figure of the paper's
// evaluation (§V) and prints a consolidated report. This is the program
// behind EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-fast] [-figs 3,4,7] [-skip-hetero] [-workers N] [-stats] [-store DIR]
//
// -fast runs at reduced simulation fidelity (about 10x cheaper; the
// qualitative conclusions survive). The full run regenerates the numbers
// recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"scalesim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	fast := flag.Bool("fast", false, "reduced simulation fidelity (~10x faster)")
	figs := flag.String("figs", "", "comma-separated ids to run (default: all): 1,3..12, mt, ablations, speedup")
	skipHetero := flag.Bool("skip-hetero", false, "skip the heterogeneous studies (Figs. 5 and 6), the most expensive collection")
	workers := flag.Int("workers", 1, "campaign worker-pool size for batch collections (0 = GOMAXPROCS)")
	stats := flag.Bool("stats", false, "print the campaign execution report (per-configuration simulation time) at the end")
	storeDir := flag.String("store", "", "durable result store directory: makes figure regeneration incremental across invocations")
	flag.Parse()

	opts := scalesim.DefaultOptions()
	if *fast {
		opts = scalesim.FastOptions()
	}

	want := map[string]bool{}
	if *figs != "" {
		for _, f := range strings.Split(*figs, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	ex, err := scalesim.NewExperiments(opts)
	if err != nil {
		log.Fatal(err)
	}
	ex.SetWorkers(*workers)
	if *storeDir != "" {
		if err := ex.SetStore(*storeDir); err != nil {
			log.Fatal(err)
		}
		defer ex.Close()
	}

	fmt.Printf("scale-model simulation experiment suite (fidelity: %s)\n",
		map[bool]string{true: "fast", false: "full"}[*fast])
	fmt.Printf("host: single-threaded Go simulator; all runs deterministic (seed %d)\n\n", opts.Seed)

	start := time.Now()
	step := func(id, name string, f func() (fmt.Stringer, error)) {
		if !selected(id) {
			return
		}
		t0 := time.Now()
		res, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(res.String())
		fmt.Printf("  [%s regenerated in %.1fs, %d simulations so far]\n\n",
			name, time.Since(t0).Seconds(), ex.Runs())
	}

	if selected("1") {
		rows, err := scalesim.TableI(scalesim.BandwidthMCFirst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Table I — scale-model construction (Proportional Resource Scaling, MC-first)")
		for _, r := range rows {
			fmt.Printf("  %2d cores | %-18s | %-32s | %s\n", r.Cores, r.LLC, r.NoC, r.DRAM)
		}
		fmt.Println()
	}

	step("3", "Fig. 3", func() (fmt.Stringer, error) { return ex.Fig3Construction() })
	step("4", "Fig. 4", func() (fmt.Stringer, error) { return ex.Fig4Homogeneous() })
	if !*skipHetero {
		step("5", "Fig. 5", func() (fmt.Stringer, error) { return ex.Fig5Heterogeneous() })
		step("6", "Fig. 6", func() (fmt.Stringer, error) { return ex.Fig6STP() })
	}
	step("7", "Fig. 7", func() (fmt.Stringer, error) { return ex.Fig7ErrorVsSpeedup() })
	step("8", "Fig. 8", func() (fmt.Stringer, error) { return ex.Fig8BandwidthScaling() })
	step("9", "Fig. 9", func() (fmt.Stringer, error) { return ex.Fig9RegressionForms() })
	step("10", "Fig. 10", func() (fmt.Stringer, error) { return ex.Fig10Inputs() })
	step("11", "Fig. 11", func() (fmt.Stringer, error) { return ex.Fig11ScaleModelCount() })
	step("12", "Fig. 12", func() (fmt.Stringer, error) { return ex.Fig12Bandwidth() })

	step("mt", "Extension: multi-threaded", func() (fmt.Stringer, error) { return ex.ExtMultithreaded() })
	step("ablations", "Ablations", func() (fmt.Stringer, error) { return ex.Ablations() })
	step("prefetch", "Extension: prefetcher robustness", func() (fmt.Stringer, error) { return ex.PrefetchStudy() })

	if selected("speedup") || len(want) == 0 {
		rows, err := ex.SimulationTimeStudy()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Simulation time study (§I / §V-D) — wall-clock per machine size, full homogeneous suite")
		base := rows[len(rows)-1].TotalSecs
		for _, r := range rows {
			fmt.Printf("  %2d cores: %8.2fs total (%6.1f ms/benchmark)  speedup vs 32-core: %5.1fx\n",
				r.Cores, r.TotalSecs, r.PerBenchMs, base/r.TotalSecs)
		}
		fmt.Println()
	}

	fmt.Printf("total: %.1fs wall-clock, %d distinct simulations", time.Since(start).Seconds(), ex.Runs())
	if *storeDir != "" {
		fmt.Printf(", %d served from store", ex.DiskHits())
	}
	fmt.Println()
	if *stats {
		fmt.Println(ex.CampaignReport())
	}
	_ = os.Stdout.Sync()
}
