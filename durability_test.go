package scalesim

import (
	"bytes"
	"context"
	"fmt"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// durabilityCampaign is the shared workload of the durability tests: three
// jobs over two benchmarks, the third a duplicate of the first so both
// memoization tiers are exercised in one batch.
func durabilityCampaign(storeDir string) Campaign {
	spec := MachineSpec{Cores: 2, Bandwidth: BandwidthMCFirst}
	opts := FastOptions()
	opts.Instructions = 60_000
	opts.Warmup = 20_000
	benches := BenchmarkNames()[:2]
	c := Campaign{Workers: 2, Store: storeDir}
	for _, seed := range []uint64{1, 7, 1} {
		o := opts
		o.Seed = seed
		c.Jobs = append(c.Jobs, CampaignJob{Machine: spec, Benchmarks: benches, Options: o})
	}
	return c
}

// renderOutcomes flattens every per-core metric of every outcome with
// bit-exact float formatting, so two renderings are equal iff the results
// are bit-identical.
func renderOutcomes(t *testing.T, res *CampaignResult) string {
	t.Helper()
	var b strings.Builder
	for _, oc := range res.Outcomes {
		if oc.Err != nil {
			t.Fatalf("job %d: %v", oc.Job, oc.Err)
		}
		for i, cr := range oc.Result.Cores {
			fmt.Fprintf(&b, "job=%d core=%d ipc=%s bw=%s mpki=%s\n", oc.Job, i,
				strconv.FormatFloat(cr.IPC, 'x', -1, 64),
				strconv.FormatFloat(cr.BWBytesPerCycle, 'x', -1, 64),
				strconv.FormatFloat(cr.LLCMPKI, 'x', -1, 64))
		}
	}
	return b.String()
}

// artifactFiles lists the store's artifact paths, sorted.
func artifactFiles(t *testing.T, storeDir string) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(filepath.Join(storeDir, "objects"), func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(p, ".json") {
			files = append(files, p)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk store: %v", err)
	}
	sort.Strings(files)
	return files
}

// TestStoreBitTransparency pins the store's core contract: a campaign run
// against a durable store returns bit-identical results to a store-less
// run, and a second run against the same store recomputes nothing.
func TestStoreBitTransparency(t *testing.T) {
	ctx := context.Background()

	storeless := durabilityCampaign("")
	baseRes, err := RunCampaignContext(ctx, storeless)
	if err != nil {
		t.Fatalf("store-less campaign: %v", err)
	}
	baseline := renderOutcomes(t, baseRes)

	storeDir := filepath.Join(t.TempDir(), "store")
	campaign := durabilityCampaign(storeDir)

	first, err := RunCampaignContext(ctx, campaign)
	if err != nil {
		t.Fatalf("first stored campaign: %v", err)
	}
	if got := renderOutcomes(t, first); got != baseline {
		t.Errorf("first stored run differs from store-less run:\n--- store-less ---\n%s--- stored ---\n%s", baseline, got)
	}
	if first.Stats.UniqueRuns != 2 || first.Stats.DiskHits != 0 {
		t.Errorf("first run stats = %+v, want 2 unique runs and 0 disk hits", first.Stats)
	}
	// Job 2 duplicates job 0; with two workers it dedups either against the
	// completed entry (memory) or the still-in-flight run (coalesced).
	for i, oc := range first.Outcomes[:2] {
		if oc.Source != SourceCompute {
			t.Errorf("first run job %d source = %q, want %q", i, oc.Source, SourceCompute)
		}
	}
	if src := first.Outcomes[2].Source; src != SourceMemory && src != SourceCoalesced {
		t.Errorf("first run job 2 source = %q, want memory or coalesced", src)
	}

	second, err := RunCampaignContext(ctx, campaign)
	if err != nil {
		t.Fatalf("second stored campaign: %v", err)
	}
	if got := renderOutcomes(t, second); got != baseline {
		t.Errorf("second stored run differs from store-less run:\n--- store-less ---\n%s--- stored ---\n%s", baseline, got)
	}
	if second.Stats.UniqueRuns != 0 {
		t.Errorf("second run simulated %d times, want zero recomputation (stats %+v)", second.Stats.UniqueRuns, second.Stats)
	}
	if second.Stats.DiskHits != 2 || second.Stats.CacheHits+second.Stats.CoalescedHits != 1 {
		t.Errorf("second run stats = %+v, want 2 disk hits and 1 memory/coalesced hit", second.Stats)
	}
	if hr := second.Stats.HitRate(); hr != 1 {
		t.Errorf("second run hit rate = %v, want 1", hr)
	}
	for i, oc := range second.Outcomes[:2] {
		if oc.Source != SourceDisk {
			t.Errorf("second run job %d source = %q, want %q", i, oc.Source, SourceDisk)
		}
	}
	if src := second.Outcomes[2].Source; src != SourceMemory && src != SourceCoalesced {
		t.Errorf("second run job 2 source = %q, want memory or coalesced", src)
	}
	for i, oc := range second.Outcomes {
		if !oc.CacheHit {
			t.Errorf("second run job %d not reported as cache hit", i)
		}
	}
}

// TestStoreCorruptionRecovery truncates one artifact of a populated store
// and re-runs the campaign: the damaged job must be quarantined and
// recomputed with no caller-visible error, and the healed store must serve
// everything from disk afterwards.
func TestStoreCorruptionRecovery(t *testing.T) {
	ctx := context.Background()
	storeDir := filepath.Join(t.TempDir(), "store")
	campaign := durabilityCampaign(storeDir)

	first, err := RunCampaignContext(ctx, campaign)
	if err != nil {
		t.Fatalf("populating campaign: %v", err)
	}
	baseline := renderOutcomes(t, first)

	files := artifactFiles(t, storeDir)
	if len(files) != 2 {
		t.Fatalf("store holds %d artifacts, want 2: %v", len(files), files)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatalf("truncate artifact: %v", err)
	}

	second, err := RunCampaignContext(ctx, campaign)
	if err != nil {
		t.Fatalf("campaign against corrupt store: %v", err)
	}
	if got := renderOutcomes(t, second); got != baseline {
		t.Errorf("recovered run differs from original:\n--- original ---\n%s--- recovered ---\n%s", baseline, got)
	}
	if second.Stats.StoreCorrupt != 1 {
		t.Errorf("StoreCorrupt = %d, want 1 (stats %+v)", second.Stats.StoreCorrupt, second.Stats)
	}
	if second.Stats.UniqueRuns != 1 || second.Stats.DiskHits != 1 {
		t.Errorf("recovery stats = %+v, want exactly the damaged job recomputed (1 unique run, 1 disk hit)", second.Stats)
	}
	if second.Stats.Failures != 0 {
		t.Errorf("recovery reported %d failures, want 0", second.Stats.Failures)
	}

	// The bad artifact is quarantined, not left in place, and the recompute
	// rewrote it: the store is healed.
	info, err := CheckStore(storeDir)
	if err != nil {
		t.Fatalf("CheckStore: %v", err)
	}
	if info.Corrupt != 0 || info.Quarantined != 1 || info.Artifacts != 2 {
		t.Errorf("healed store check = %+v, want 2 clean artifacts and 1 quarantined file", info)
	}

	third, err := RunCampaignContext(ctx, campaign)
	if err != nil {
		t.Fatalf("campaign against healed store: %v", err)
	}
	if third.Stats.UniqueRuns != 0 || third.Stats.DiskHits != 2 {
		t.Errorf("healed-store stats = %+v, want zero recomputation", third.Stats)
	}
}

// TestCrossProcessStoreReuse is the cross-process half of the durability
// contract: a second process pointed at the first process's store must
// serve every design point from disk (100% hit rate, zero simulator
// invocations) and produce byte-identical metrics.
func TestCrossProcessStoreReuse(t *testing.T) {
	if out := os.Getenv("SCALESIM_STORE_OUT"); out != "" {
		writeStorePayload(t, out, os.Getenv("SCALESIM_STORE_DIR"), os.Getenv("SCALESIM_STORE_EXPECT"))
		return
	}
	if testing.Short() {
		t.Skip("re-executes the test binary")
	}

	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	runChild := func(name, expect string) []byte {
		path := filepath.Join(dir, name)
		cmd := exec.Command(exe, "-test.run=^TestCrossProcessStoreReuse$", "-test.count=1")
		cmd.Env = append(os.Environ(),
			"SCALESIM_STORE_OUT="+path,
			"SCALESIM_STORE_DIR="+storeDir,
			"SCALESIM_STORE_EXPECT="+expect)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("child %s failed: %v\n%s", name, err, out)
		}
		payload, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read child payload: %v", err)
		}
		if len(payload) == 0 {
			t.Fatalf("child %s wrote an empty payload", name)
		}
		return payload
	}

	first := runChild("first", "compute")
	second := runChild("second", "disk")
	if !bytes.Equal(first, second) {
		t.Errorf("store round-trip across processes changed the results:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// writeStorePayload runs the durability campaign in a child process,
// asserts the expected memoization behavior (fresh store computes; reused
// store disk-hits everything), and streams the bit-exact metrics to path.
func writeStorePayload(t *testing.T, path, storeDir, expect string) {
	res, err := RunCampaignContext(context.Background(), durabilityCampaign(storeDir))
	if err != nil {
		t.Fatalf("RunCampaignContext: %v", err)
	}
	switch expect {
	case "compute":
		if res.Stats.UniqueRuns != 2 || res.Stats.DiskHits != 0 {
			t.Fatalf("first process stats = %+v, want 2 unique runs against a fresh store", res.Stats)
		}
	case "disk":
		if res.Stats.UniqueRuns != 0 {
			t.Fatalf("second process simulated %d times, want zero recomputation (stats %+v)", res.Stats.UniqueRuns, res.Stats)
		}
		if res.Stats.DiskHits != 2 || res.Stats.HitRate() != 1 {
			t.Fatalf("second process stats = %+v, want 2 disk hits and a 100%% hit rate", res.Stats)
		}
	default:
		t.Fatalf("unknown SCALESIM_STORE_EXPECT %q", expect)
	}
	payload := renderOutcomes(t, res)
	if err := os.WriteFile(path, []byte(payload), 0o644); err != nil {
		t.Fatalf("write payload: %v", err)
	}
}
